//! Vendored, self-contained stand-in for the `proptest` 1.x API surface
//! this workspace uses: the `proptest!` macro, range/`any`/`vec`
//! strategies, `prop_map`, `prop_assert*`, and `prop_assume!`.
//!
//! Semantics: each generated test runs `ProptestConfig::cases` random
//! cases from a per-test deterministic seed. Failing inputs are reported
//! in the panic message. Unlike upstream proptest there is **no
//! shrinking** and no regression-file persistence — failures print the
//! exact generated inputs instead, which is enough to reproduce since the
//! seed is fixed per test name.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::any;

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     /// Doc comment.
///     #[test]
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($config) $($rest)*);
    };
    (@expand ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(16).max(64);
                while accepted < config.cases {
                    attempts += 1;
                    if attempts > max_attempts {
                        panic!(
                            "proptest '{}': gave up after {} attempts ({} accepted); \
                             prop_assume! rejects too many cases",
                            stringify!($name), attempts, accepted
                        );
                    }
                    $(let $arg = $crate::strategy::Strategy::new_value(&$strat, &mut rng);)+
                    // Render inputs up front: the body may move them.
                    let rendered_inputs: ::std::string::String =
                        ::std::string::String::new()
                            $(+ &format!("\n    {} = {:?}", stringify!($arg), &$arg))+;
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject) => continue,
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' failed: {}\n  inputs:{}",
                                stringify!($name),
                                msg,
                                rendered_inputs,
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in -5i32..5, f in 0.5f64..1.5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size_range(
            v in crate::collection::vec(any::<u8>(), 3..7),
        ) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn prop_map_applies(p in (3u32..7).prop_map(|p| 1u64 << p)) {
            prop_assert!(p.is_power_of_two());
            prop_assert!((8..=64).contains(&p));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(8))]
                fn always_fails(x in 0u32..10) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let err = result.expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("always_fails") && msg.contains("x ="), "{msg}");
    }
}
