//! The `Strategy` trait and the combinators this workspace uses.

use core::fmt::Debug;
use core::ops::{Range, RangeInclusive};

use rand::distributions::uniform::SampleUniform;
use rand::Rng;

use crate::test_runner::TestRng;

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map {
            source: self,
            map: f,
        }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop_map` combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.new_value(rng))
    }
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform + Copy + PartialOrd + Debug,
{
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: SampleUniform + Copy + PartialOrd + Debug,
{
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_and_map_compose() {
        let mut rng = TestRng::for_test("compose");
        let strat = (1u32..5).prop_map(|v| v * 10);
        for _ in 0..100 {
            let v = strat.new_value(&mut rng);
            assert!([10, 20, 30, 40].contains(&v));
        }
        assert_eq!(Just(7u8).new_value(&mut rng), 7);
    }
}
