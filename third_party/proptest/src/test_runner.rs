//! Test-runner plumbing: configuration, case outcomes, and the
//! deterministic per-test RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

/// The deterministic RNG driving strategy generation.
///
/// Seeded from a stable hash of the test name, so every run of a given
/// test generates the same case sequence (no shrinking; reproduction is
/// by re-running the test).
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(hash),
        }
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("beta");
        assert_ne!(TestRng::for_test("alpha").next_u64(), c.next_u64());
    }
}
