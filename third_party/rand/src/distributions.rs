//! Distributions: `Standard`, `Uniform`, and the uniform-sampling traits.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution per type: uniform over the full integer
/// domain, uniform `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),+ $(,)?) => {
        $(impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        })+
    };
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<i128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i128 {
        <Standard as Distribution<u128>>::sample(self, rng) as i128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    /// Uniform on `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A uniform distribution over a fixed interval.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T> {
    low: T,
    high: T,
}

impl<T: uniform::SampleUniform + Copy + PartialOrd> Uniform<T> {
    /// Uniform over the half-open interval `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn new(low: T, high: T) -> Self {
        assert!(low < high, "Uniform::new called with empty range");
        Uniform { low, high }
    }

    /// Uniform over the closed interval `[low, high]`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn new_inclusive(low: T, high: T) -> Self {
        assert!(
            low <= high,
            "Uniform::new_inclusive called with empty range"
        );
        Uniform { low, high }
    }
}

impl<T: uniform::SampleUniform + Copy> Distribution<T> for Uniform<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_half_open(self.low, self.high, rng)
    }
}

/// Uniform-sampling plumbing, mirroring `rand::distributions::uniform`.
pub mod uniform {
    use crate::RngCore;

    /// Types that can be drawn uniformly from a range.
    pub trait SampleUniform: Sized {
        /// One draw from `[low, high)`.
        fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        /// One draw from `[low, high]`.
        fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    }

    /// Range forms accepted by `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Draws one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform + Copy + PartialOrd> SampleRange<T> for core::ops::Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "gen_range called with empty range");
            T::sample_half_open(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform + Copy + PartialOrd> SampleRange<T> for core::ops::RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "gen_range called with empty range");
            T::sample_inclusive(lo, hi, rng)
        }
    }

    /// Draws uniformly from `[0, span]` (inclusive) without modulo bias.
    fn draw_u64_span<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
        if span == u64::MAX {
            return rng.next_u64();
        }
        let buckets = span + 1;
        // 2^64 mod buckets, computed without overflowing u64.
        let rem = (u64::MAX % buckets + 1) % buckets;
        if rem == 0 {
            return rng.next_u64() % buckets;
        }
        // Accept draws below 2^64 - rem: a whole number of buckets.
        let threshold = u64::MAX - rem + 1;
        loop {
            let v = rng.next_u64();
            if v < threshold {
                return v % buckets;
            }
        }
    }

    macro_rules! uniform_uint {
        ($($t:ty),+ $(,)?) => {
            $(impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    let span = (high as u64) - (low as u64) - 1;
                    low + draw_u64_span(span, rng) as $t
                }
                fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    let span = (high as u64) - (low as u64);
                    low + draw_u64_span(span, rng) as $t
                }
            })+
        };
    }

    uniform_uint!(u8, u16, u32, u64, usize);

    macro_rules! uniform_int {
        ($($t:ty : $u:ty),+ $(,)?) => {
            $(impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    let span = (high as $u).wrapping_sub(low as $u) as u64 - 1;
                    low.wrapping_add(draw_u64_span(span, rng) as $t)
                }
                fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    let span = (high as $u).wrapping_sub(low as $u) as u64;
                    low.wrapping_add(draw_u64_span(span, rng) as $t)
                }
            })+
        };
    }

    uniform_int!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

    macro_rules! uniform_float {
        ($($t:ty),+ $(,)?) => {
            $(impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    let u: f64 = crate::Distribution::<f64>::sample(&crate::Standard, rng);
                    let v = low as f64 + u * (high as f64 - low as f64);
                    // Float rounding can land exactly on `high`
                    // (probability ~0); fold that mass onto `low`.
                    let v = v as $t;
                    if v >= high { low } else { v }
                }
                fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    let u: f64 = crate::Distribution::<f64>::sample(&crate::Standard, rng);
                    let v = (low as f64 + u * (high as f64 - low as f64)) as $t;
                    v.clamp(low, high)
                }
            })+
        };
    }

    uniform_float!(f32, f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn uniform_distribution_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(20);
        let d = Uniform::new(0.0f64, 1.0f64);
        for _ in 0..10_000 {
            let v = d.sample(&mut rng);
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(21);
        let d = Uniform::new(10.0f64, 20.0f64);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 15.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn integer_ranges_are_unbiased_enough() {
        let mut rng = StdRng::seed_from_u64(22);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[rng.gen_range(0usize..7)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn negative_ranges_work() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..1000 {
            let v: i32 = rng.gen_range(-100..-50);
            assert!((-100..-50).contains(&v));
        }
    }
}
