//! Vendored, self-contained stand-in for the `rand` 0.8 API surface this
//! workspace uses.
//!
//! The build environment resolves every dependency from a vendored path, so
//! a cold-cache `cargo build && cargo test` needs no network access. This
//! crate reimplements the *interfaces* the workspace calls (`Rng`,
//! `SeedableRng`, `rngs::StdRng`, `distributions::{Distribution, Uniform,
//! Standard}`) over a xoshiro256++ generator. Streams are deterministic per
//! seed but intentionally **not** bit-identical to upstream `rand`'s
//! ChaCha-based `StdRng`; all workspace tests assert statistical
//! tolerances, not exact draws.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard, Uniform};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must be in [0, 1], got {p}"
        );
        // Exact endpoints avoid float-comparison edge cases.
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let u: f64 = self.gen();
        u < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Fixed-size seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 and constructs the
    /// generator. The only seeding path the workspace uses.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = rngs::SplitMix64::new(state);
        for byte_chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            byte_chunk.copy_from_slice(&bytes[..byte_chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_standard_is_half_on_average() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_range_covers_and_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let f: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
            let i: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn works_through_dyn_and_mut_refs() {
        fn takes_unsized<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(4);
        let v = takes_unsized(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
