//! Concrete generators: `StdRng` (xoshiro256++) and the SplitMix64 seeder.

use crate::{RngCore, SeedableRng};

/// SplitMix64: the standard seed-expansion generator for xoshiro.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a SplitMix64 stream from a `u64` seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The workspace's standard generator: xoshiro256++.
///
/// Deterministic per seed, 256-bit state, passes BigCrush; not the ChaCha12
/// generator upstream `rand` uses, so streams differ from upstream for the
/// same seed (workspace tests assert tolerances, not exact draws).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state is a fixed point of xoshiro; perturb it.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                1,
            ];
        }
        StdRng { s }
    }
}

/// Alias kept for API parity with upstream `rand`.
pub type SmallRng = StdRng;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Rng, RngCore};

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0; 32]);
        let draws: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(draws.iter().any(|&d| d != 0));
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn next_u32_uses_high_bits() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(a.next_u32() as u64, b.next_u64() >> 32);
    }

    #[test]
    fn clone_forks_identical_streams() {
        let mut a = StdRng::seed_from_u64(10);
        let _ = a.gen::<f64>();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
